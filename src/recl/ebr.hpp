// DEBRA-style epoch-based memory reclamation (Brown, PODC'15), the scheme the
// paper uses to free tree nodes (§4.3).
//
// Protocol: each operation pins the calling thread by announcing the current
// global epoch with a "pinned" bit (getGuard() in the paper's API). retire(p)
// places p in the thread's limbo bag for the current epoch. A bag for epoch e
// is freed once the global epoch has advanced three times past e: two
// advances guarantee no pinned thread still holds a pointer *read from the
// structure* in epoch e, and the third covers KCAS helpers, which harvest
// staged addresses from descriptors that outlive the commit (see doPin in
// ebr.cpp for the full argument). Epoch advancement
// is cooperative and amortized: every kAdvanceInterval pins a thread scans the
// announcement array and advances the global epoch if every pinned thread has
// announced it.
//
// Reclamation is *recycling*, not freeing (DEBRA's design point): every
// retired node carries a PoolBase owner, and when its grace period expires
// the node's memory is handed back to that owner — for data-structure nodes
// the owner is a recl::NodePool (pool.hpp), which pushes the still-cache-warm
// slot onto the expiring thread's free list for the next allocation. The
// legacy retire(p) overload routes through HeapRecycler<T>, whose recycleRaw
// is plain `delete`, for callers without a pool.
//
// Limbo bags are chunked intrusive lists (LimboChunk): fixed-size record
// arrays chained through an embedded next pointer, recycled through a
// per-thread chunk cache, so steady-state retiring performs no heap
// allocation at all.
//
// Guarantees: a retired node is never recycled while any thread that might
// have a pointer to it remains pinned. Unpinned threads never block
// reclamation.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/defs.hpp"
#include "util/padding.hpp"
#include "util/thread_registry.hpp"

namespace pathcas::recl {

class EbrDomain;

/// The reclamation contract between EbrDomain and allocators: whoever owns a
/// retired node's memory implements recycleRaw(), which is invoked exactly
/// once per retired node, on the retiring thread, after the node's grace
/// period has expired (no thread can still read it — overwriting the memory
/// is safe from here on). recl::NodePool is the production implementation.
class PoolBase {
 public:
  virtual void recycleRaw(void* p) = 0;

 protected:
  ~PoolBase() = default;  // never deleted through the base
};

template <typename NodeT>
class NodePool;  // pool.hpp

/// Owner for nodes allocated with plain `new`: recycling is `delete`. Used
/// by the retire(p) compatibility overload (tests, TM baselines); the
/// concurrent structures all retire into NodePools instead.
template <typename T>
class HeapRecycler final : public PoolBase {
 public:
  static HeapRecycler& instance() {
    static HeapRecycler recycler;
    return recycler;
  }
  void recycleRaw(void* p) override { delete static_cast<T*>(p); }
};

/// RAII pin. Hold one for the duration of any operation that traverses
/// reclaimed-memory data structures (the paper's getGuard()).
class Guard {
 public:
  explicit Guard(EbrDomain& domain);
  ~Guard();
  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;

 private:
  EbrDomain& domain_;
  bool engaged_;  // false for nested guards: outermost guard owns the pin
};

class EbrDomain {
 public:
  /// Process-wide domain shared by all data structures (matches the paper's
  /// single-DEBRA-instance setup). Separate domains are possible for tests.
  /// Deliberately leaked (never destroyed): its limbo records reference
  /// NodePools with static storage duration, and C++ gives no portable
  /// ordering between the two at exit; the OS reclaims the memory anyway.
  static EbrDomain& instance();

  EbrDomain();
  ~EbrDomain();

  Guard pin() { return Guard(*this); }

  /// Defer recycling of p into `owner` until no pinned thread can reach it.
  /// Typed: the pool must hold nodes of p's exact type, so retiring into a
  /// sibling pool of a different node size is a compile error. The owner
  /// must outlive every limbo record referencing it: keep pools alive until
  /// the domain has drained (or is itself gone).
  template <typename T>
  void retire(T* p, NodePool<T>& owner) {
    retireRaw(p, &static_cast<PoolBase&>(owner));
  }

  /// Compatibility overload for heap-allocated objects: defer `delete p`.
  template <typename T>
  void retire(T* p) {
    retireRaw(p, &HeapRecycler<T>::instance());
  }

  void retireRaw(void* p, PoolBase* owner);

  /// Statistics for tests and the memory-usage analysis bench.
  std::uint64_t epoch() const {
    return globalEpoch_.load(std::memory_order_acquire);
  }
  std::uint64_t retiredCount() const;
  std::uint64_t freedCount() const;

  /// Recycle everything immediately. Only callable when no thread is pinned
  /// (e.g. between benchmark trials); checked.
  void drainAll();

 private:
  friend class Guard;
  struct Retired {
    void* p;
    PoolBase* owner;
  };
  /// One link of a chunked limbo bag. Chunks are recycled through the
  /// owning thread's chunkCache, so retiring allocates only while a bag is
  /// still growing toward its high-water mark.
  struct LimboChunk {
    static constexpr int kCapacity = 62;  // 16-byte records; chunk ≈ 1 KiB
    LimboChunk* next = nullptr;
    int count = 0;
    Retired recs[kCapacity];
  };
  struct ThreadSlot {
    // Announcement: (epoch << 1) | pinned.
    std::atomic<std::uint64_t> announce{0};
    std::uint64_t pinCount = 0;
    std::uint64_t lastPinEpoch = 0;
    // Limbo bags (heads of chunk chains). Each bag is labeled with the
    // *global epoch at retire time* of its contents (not the retiring
    // thread's pin epoch — the global epoch may have advanced mid-operation,
    // and labeling with the stale pin epoch would free one grace period too
    // early). kBags = free horizon + 1 (see doPin for the horizon argument).
    static constexpr int kBags = 4;
    LimboChunk* bags[kBags] = {nullptr, nullptr, nullptr, nullptr};
    std::uint64_t bagLabel[kBags] = {0, 0, 0, 0};
    LimboChunk* chunkCache = nullptr;
    std::uint64_t retired = 0;
    std::uint64_t freed = 0;
    int nestDepth = 0;
  };

  void doPin(ThreadSlot& slot);
  void doUnpin(ThreadSlot& slot);
  void tryAdvance();
  void freeBag(ThreadSlot& slot, int bagIdx);

  static constexpr std::uint64_t kAdvanceInterval = 32;

  Padded<ThreadSlot> slots_[kMaxThreads];
  alignas(kNoFalseSharing) std::atomic<std::uint64_t> globalEpoch_{1};
};

inline Guard::Guard(EbrDomain& domain) : domain_(domain) {
  auto& slot = *domain_.slots_[ThreadRegistry::tid()];
  engaged_ = (slot.nestDepth++ == 0);
  if (engaged_) domain_.doPin(slot);
}

inline Guard::~Guard() {
  auto& slot = *domain_.slots_[ThreadRegistry::tid()];
  --slot.nestDepth;
  if (engaged_) domain_.doUnpin(slot);
}

}  // namespace pathcas::recl
