#include "recl/ebr.hpp"

namespace pathcas::recl {

EbrDomain& EbrDomain::instance() {
  static EbrDomain domain;
  return domain;
}

EbrDomain::EbrDomain() = default;

EbrDomain::~EbrDomain() {
  // Free whatever is still in limbo; at destruction no user threads run.
  for (auto& padded : slots_) {
    for (auto& bag : padded->bags) {
      for (auto& r : bag) r.deleter(r.p);
      bag.clear();
    }
  }
}

void EbrDomain::doPin(ThreadSlot& slot) {
  const std::uint64_t e = globalEpoch_.load(std::memory_order_acquire);
  // seq_cst so the announcement is globally visible before any data-structure
  // load in this epoch (prevents a racing advancer from missing us).
  slot.announce.store((e << 1) | 1, std::memory_order_seq_cst);
  std::atomic_thread_fence(std::memory_order_seq_cst);

  if (slot.lastPinEpoch != e) {
    slot.lastPinEpoch = e;
    // A bag whose retire-time label is >= 2 epochs old is unreachable: any
    // thread that could have obtained a pointer to its contents pre-unlink
    // was pinned with an announcement < label+1, which would have blocked
    // the global epoch from ever reaching label+2.
    for (int i = 0; i < 3; ++i) {
      if (!slot.bags[i].empty() && slot.bagLabel[i] + 2 <= e)
        freeBag(slot, slot.bags[i]);
    }
  }
  if (++slot.pinCount % kAdvanceInterval == 0) tryAdvance();
}

void EbrDomain::doUnpin(ThreadSlot& slot) {
  const std::uint64_t a = slot.announce.load(std::memory_order_relaxed);
  slot.announce.store(a & ~1ULL, std::memory_order_release);
}

void EbrDomain::tryAdvance() {
  const std::uint64_t e = globalEpoch_.load(std::memory_order_acquire);
  const int n = ThreadRegistry::instance().maxTid();
  for (int i = 0; i < n; ++i) {
    const std::uint64_t a = slots_[i]->announce.load(std::memory_order_acquire);
    if ((a & 1) && (a >> 1) != e) return;  // someone pinned in an old epoch
  }
  std::uint64_t expected = e;
  globalEpoch_.compare_exchange_strong(expected, e + 1,
                                       std::memory_order_acq_rel);
}

void EbrDomain::freeBag(ThreadSlot& slot, std::vector<Retired>& bag) {
  for (auto& r : bag) {
    r.deleter(r.p);
    ++slot.freed;
  }
  bag.clear();
}

void EbrDomain::retireRaw(void* p, void (*deleter)(void*)) {
  auto& slot = *slots_[ThreadRegistry::tid()];
  // Label with the retire-time global epoch L. The bag slot L%3 can only
  // hold leftovers labeled <= L-3, which are already freeable (global == L).
  const std::uint64_t label = globalEpoch_.load(std::memory_order_acquire);
  const int idx = static_cast<int>(label % 3);
  if (slot.bagLabel[idx] != label) {
    if (!slot.bags[idx].empty()) {
      PATHCAS_DCHECK(slot.bagLabel[idx] + 3 <= label);
      freeBag(slot, slot.bags[idx]);
    }
    slot.bagLabel[idx] = label;
  }
  slot.bags[idx].push_back(Retired{p, deleter});
  ++slot.retired;
}

std::uint64_t EbrDomain::retiredCount() const {
  std::uint64_t sum = 0;
  for (auto& s : slots_) sum += s->retired;
  return sum;
}

std::uint64_t EbrDomain::freedCount() const {
  std::uint64_t sum = 0;
  for (auto& s : slots_) sum += s->freed;
  return sum;
}

void EbrDomain::drainAll() {
  const int n = ThreadRegistry::instance().maxTid();
  for (int i = 0; i < n; ++i) {
    PATHCAS_CHECK(!(slots_[i]->announce.load(std::memory_order_acquire) & 1));
  }
  for (auto& padded : slots_) {
    for (auto& bag : padded->bags) freeBag(*padded, bag);
  }
}

}  // namespace pathcas::recl
