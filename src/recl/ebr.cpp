#include "recl/ebr.hpp"

namespace pathcas::recl {

EbrDomain& EbrDomain::instance() {
  // Deliberately leaked — see the declaration comment: limbo records hold
  // PoolBase* into NodePools with static storage duration, and destroying
  // the domain after those pools would recycle into freed memory.
  static EbrDomain* domain = new EbrDomain();
  return *domain;
}

EbrDomain::EbrDomain() = default;

EbrDomain::~EbrDomain() {
  // Recycle whatever is still in limbo; at destruction no user threads run.
  // Owners (pools) must still be alive — declare pools before local domains.
  for (auto& padded : slots_) {
    for (int i = 0; i < ThreadSlot::kBags; ++i) freeBag(*padded, i);
    for (LimboChunk* c = padded->chunkCache; c != nullptr;) {
      LimboChunk* next = c->next;
      delete c;
      c = next;
    }
    padded->chunkCache = nullptr;
  }
}

void EbrDomain::doPin(ThreadSlot& slot) {
  const std::uint64_t e = globalEpoch_.load(std::memory_order_acquire);
  // seq_cst so the announcement is globally visible before any data-structure
  // load in this epoch (prevents a racing advancer from missing us).
  slot.announce.store((e << 1) | 1, std::memory_order_seq_cst);
  std::atomic_thread_fence(std::memory_order_seq_cst);

  if (slot.lastPinEpoch != e) {
    slot.lastPinEpoch = e;
    // Free horizon: 3 epochs, not the textbook 2. The classic argument —
    // "anyone who obtained a pointer pre-unlink was pinned with an
    // announcement < label+1, blocking the epoch from reaching label+2" —
    // covers pointers obtained *from the structure*, but KCAS helpers obtain
    // staged addresses *from a descriptor*, which outlives the commit until
    // its slot is reused. A helper pinned at label+1 can harvest such an
    // address (the retire-time label load may lag the true epoch by one
    // while the retirer is pinned), and pinned-at-current-epoch threads do
    // not block the next advance — so label+2 could be reached without ever
    // synchronizing with that helper, racing its doomed CAS against the
    // recycle. One extra epoch forces an advance that must observe every
    // such helper's announcement transition.
    for (int i = 0; i < ThreadSlot::kBags; ++i) {
      if (slot.bags[i] != nullptr && slot.bagLabel[i] + 3 <= e)
        freeBag(slot, i);
    }
  }
  if (++slot.pinCount % kAdvanceInterval == 0) tryAdvance();
}

void EbrDomain::doUnpin(ThreadSlot& slot) {
  const std::uint64_t a = slot.announce.load(std::memory_order_relaxed);
  slot.announce.store(a & ~1ULL, std::memory_order_release);
}

void EbrDomain::tryAdvance() {
  const std::uint64_t e = globalEpoch_.load(std::memory_order_acquire);
  const int n = ThreadRegistry::instance().maxTid();
  for (int i = 0; i < n; ++i) {
    const std::uint64_t a = slots_[i]->announce.load(std::memory_order_acquire);
    if ((a & 1) && (a >> 1) != e) return;  // someone pinned in an old epoch
  }
  std::uint64_t expected = e;
  globalEpoch_.compare_exchange_strong(expected, e + 1,
                                       std::memory_order_acq_rel);
}

void EbrDomain::freeBag(ThreadSlot& slot, int bagIdx) {
  // Hand every expired record back to its owner (NodePool recycle or the
  // HeapRecycler's delete), then return the chunks to this thread's cache —
  // the bag will reuse them the next time it fills.
  for (LimboChunk* c = slot.bags[bagIdx]; c != nullptr;) {
    for (int i = 0; i < c->count; ++i) {
      c->recs[i].owner->recycleRaw(c->recs[i].p);
      ++slot.freed;
    }
    LimboChunk* next = c->next;
    c->count = 0;
    c->next = slot.chunkCache;
    slot.chunkCache = c;
    c = next;
  }
  slot.bags[bagIdx] = nullptr;
}

void EbrDomain::retireRaw(void* p, PoolBase* owner) {
  auto& slot = *slots_[ThreadRegistry::tid()];
  // Label with the retire-time global epoch L. The bag slot L%kBags can only
  // hold leftovers labeled <= L-kBags, which are already freeable
  // (global == L and the free horizon is kBags-1).
  const std::uint64_t label = globalEpoch_.load(std::memory_order_acquire);
  const int idx = static_cast<int>(label % ThreadSlot::kBags);
  if (slot.bagLabel[idx] != label) {
    if (slot.bags[idx] != nullptr) {
      PATHCAS_DCHECK(slot.bagLabel[idx] + ThreadSlot::kBags <= label);
      freeBag(slot, idx);
    }
    slot.bagLabel[idx] = label;
  }
  LimboChunk* head = slot.bags[idx];
  if (head == nullptr || head->count == LimboChunk::kCapacity) {
    LimboChunk* c = slot.chunkCache;
    if (c != nullptr) {
      slot.chunkCache = c->next;
    } else {
      c = new LimboChunk();
    }
    c->next = head;
    c->count = 0;
    slot.bags[idx] = head = c;
  }
  head->recs[head->count++] = Retired{p, owner};
  ++slot.retired;
}

std::uint64_t EbrDomain::retiredCount() const {
  std::uint64_t sum = 0;
  for (auto& s : slots_) sum += s->retired;
  return sum;
}

std::uint64_t EbrDomain::freedCount() const {
  std::uint64_t sum = 0;
  for (auto& s : slots_) sum += s->freed;
  return sum;
}

void EbrDomain::drainAll() {
  const int n = ThreadRegistry::instance().maxTid();
  for (int i = 0; i < n; ++i) {
    PATHCAS_CHECK(!(slots_[i]->announce.load(std::memory_order_acquire) & 1));
  }
  for (auto& padded : slots_) {
    for (int i = 0; i < ThreadSlot::kBags; ++i) freeBag(*padded, i);
  }
}

}  // namespace pathcas::recl
