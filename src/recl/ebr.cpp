#include "recl/ebr.hpp"

namespace pathcas::recl {

EbrDomain& EbrDomain::instance() {
  // Deliberately leaked — see the declaration comment: limbo records hold
  // PoolBase* into NodePools with static storage duration, and destroying
  // the domain after those pools would recycle into freed memory.
  static EbrDomain* domain = new EbrDomain();
  return *domain;
}

EbrDomain::EbrDomain() = default;

EbrDomain::~EbrDomain() {
  // Recycle whatever is still in limbo; at destruction no user threads run.
  // Owners (pools) must still be alive — declare pools before local domains.
  for (auto& padded : slots_) {
    for (int i = 0; i < 3; ++i) freeBag(*padded, i);
    for (LimboChunk* c = padded->chunkCache; c != nullptr;) {
      LimboChunk* next = c->next;
      delete c;
      c = next;
    }
    padded->chunkCache = nullptr;
  }
}

void EbrDomain::doPin(ThreadSlot& slot) {
  const std::uint64_t e = globalEpoch_.load(std::memory_order_acquire);
  // seq_cst so the announcement is globally visible before any data-structure
  // load in this epoch (prevents a racing advancer from missing us).
  slot.announce.store((e << 1) | 1, std::memory_order_seq_cst);
  std::atomic_thread_fence(std::memory_order_seq_cst);

  if (slot.lastPinEpoch != e) {
    slot.lastPinEpoch = e;
    // A bag whose retire-time label is >= 2 epochs old is unreachable: any
    // thread that could have obtained a pointer to its contents pre-unlink
    // was pinned with an announcement < label+1, which would have blocked
    // the global epoch from ever reaching label+2.
    for (int i = 0; i < 3; ++i) {
      if (slot.bags[i] != nullptr && slot.bagLabel[i] + 2 <= e)
        freeBag(slot, i);
    }
  }
  if (++slot.pinCount % kAdvanceInterval == 0) tryAdvance();
}

void EbrDomain::doUnpin(ThreadSlot& slot) {
  const std::uint64_t a = slot.announce.load(std::memory_order_relaxed);
  slot.announce.store(a & ~1ULL, std::memory_order_release);
}

void EbrDomain::tryAdvance() {
  const std::uint64_t e = globalEpoch_.load(std::memory_order_acquire);
  const int n = ThreadRegistry::instance().maxTid();
  for (int i = 0; i < n; ++i) {
    const std::uint64_t a = slots_[i]->announce.load(std::memory_order_acquire);
    if ((a & 1) && (a >> 1) != e) return;  // someone pinned in an old epoch
  }
  std::uint64_t expected = e;
  globalEpoch_.compare_exchange_strong(expected, e + 1,
                                       std::memory_order_acq_rel);
}

void EbrDomain::freeBag(ThreadSlot& slot, int bagIdx) {
  // Hand every expired record back to its owner (NodePool recycle or the
  // HeapRecycler's delete), then return the chunks to this thread's cache —
  // the bag will reuse them the next time it fills.
  for (LimboChunk* c = slot.bags[bagIdx]; c != nullptr;) {
    for (int i = 0; i < c->count; ++i) {
      c->recs[i].owner->recycleRaw(c->recs[i].p);
      ++slot.freed;
    }
    LimboChunk* next = c->next;
    c->count = 0;
    c->next = slot.chunkCache;
    slot.chunkCache = c;
    c = next;
  }
  slot.bags[bagIdx] = nullptr;
}

void EbrDomain::retireRaw(void* p, PoolBase* owner) {
  auto& slot = *slots_[ThreadRegistry::tid()];
  // Label with the retire-time global epoch L. The bag slot L%3 can only
  // hold leftovers labeled <= L-3, which are already freeable (global == L).
  const std::uint64_t label = globalEpoch_.load(std::memory_order_acquire);
  const int idx = static_cast<int>(label % 3);
  if (slot.bagLabel[idx] != label) {
    if (slot.bags[idx] != nullptr) {
      PATHCAS_DCHECK(slot.bagLabel[idx] + 3 <= label);
      freeBag(slot, idx);
    }
    slot.bagLabel[idx] = label;
  }
  LimboChunk* head = slot.bags[idx];
  if (head == nullptr || head->count == LimboChunk::kCapacity) {
    LimboChunk* c = slot.chunkCache;
    if (c != nullptr) {
      slot.chunkCache = c->next;
    } else {
      c = new LimboChunk();
    }
    c->next = head;
    c->count = 0;
    slot.bags[idx] = head = c;
  }
  head->recs[head->count++] = Retired{p, owner};
  ++slot.retired;
}

std::uint64_t EbrDomain::retiredCount() const {
  std::uint64_t sum = 0;
  for (auto& s : slots_) sum += s->retired;
  return sum;
}

std::uint64_t EbrDomain::freedCount() const {
  std::uint64_t sum = 0;
  for (auto& s : slots_) sum += s->freed;
  return sum;
}

void EbrDomain::drainAll() {
  const int n = ThreadRegistry::instance().maxTid();
  for (int i = 0; i < n; ++i) {
    PATHCAS_CHECK(!(slots_[i]->announce.load(std::memory_order_acquire) & 1));
  }
  for (auto& padded : slots_) {
    for (int i = 0; i < 3; ++i) freeBag(*padded, i);
  }
}

}  // namespace pathcas::recl
