// Type-segregated node pool with per-thread free lists — the allocation half
// of the repo's recycling memory stack (the reclamation half is ebr.hpp).
//
// DEBRA (the paper's reclamation scheme, §4.3) is designed for retired nodes
// to be *recycled*, not handed back to the global allocator: on the
// update-heavy sweeps every insert allocates and every delete retires, so
// allocator locks and metadata would otherwise sit on every operation.
// NodePool<Node> closes that loop:
//
//   alloc()   — pop a slot from the calling thread's free list (pure
//               pointer ops, no synchronization); refill a whole chain from
//               a global shard on miss; touch ::operator new only when the
//               pool has never held enough memory (warm-up / growth).
//   retire    — EbrDomain limbo records carry `this` as the PoolBase owner;
//               when the grace period expires, recycleRaw() pushes the
//               still-cache-warm slot onto the *retiring* thread's free
//               list, so churny workloads keep reusing hot lines.
//   destroy() — immediate recycle, for nodes that were never published
//               (failed-insert spares, failed-vexec replacements) and for
//               quiescent teardown.
//
// Free lists are intrusive (the link lives in the dead node's first bytes —
// legal because a slot is only linked after its grace period, when no thread
// can read it) and bounded: a local list that grows past kLocalCap spills a
// chain of kSpillBatch slots to one of kShards lock-protected global shard
// lists, where other threads' refills pick it up, so memory migrates between
// threads instead of accumulating.
//
// Ownership rules (see docs/ARCHITECTURE.md, "The memory subsystem"):
//   * A pool must outlive (a) every structure allocating from it and
//     (b) every EbrDomain limbo record that names it as owner. Structures
//     default to a per-node-type process-lifetime pool (their defaultPool()),
//     which satisfies both; callers passing their own pool must declare it
//     before any local EbrDomain that will hold its retirees.
//   * Node types must be trivially destructible (checked): the pool reclaims
//     slots wholesale, and EBR recycling must not run user code on memory
//     another thread may still read.
//   * alloc()/destroy()/recycleRaw() may race freely across threads;
//     drainQuiescent() and the stats aggregators require quiescence.
#pragma once

#include <atomic>
#include <cstdint>
#include <new>
#include <type_traits>

#include "recl/ebr.hpp"
#include "util/defs.hpp"
#include "util/locks.hpp"
#include "util/padding.hpp"
#include "util/thread_registry.hpp"

namespace pathcas::recl {

struct PoolStats {
  std::uint64_t fresh = 0;     // slots obtained from ::operator new
  std::uint64_t reused = 0;    // slots obtained from a free list
  std::uint64_t recycled = 0;  // slots returned (EBR expiry or destroy())
  std::uint64_t spills = 0;    // local → global chain handoffs
  std::uint64_t refills = 0;   // global → local chain handoffs
  std::uint64_t drained = 0;   // slots released back to ::operator delete
};

template <typename NodeT>
class NodePool final : public PoolBase {
 public:
  static_assert(std::is_trivially_destructible_v<NodeT>,
                "pooled nodes are reclaimed without running destructors");

  NodePool() = default;
  NodePool(const NodePool&) = delete;
  NodePool& operator=(const NodePool&) = delete;
  ~NodePool() { drainQuiescent(); }

  /// Allocate and construct a node. Wait-free except on the cold miss path.
  template <typename... Args>
  NodeT* alloc(Args&&... args) {
    LocalCache& lc = *local_[ThreadRegistry::tid()];
    FreeSlot* slot = lc.head;
    if (PATHCAS_UNLIKELY(slot == nullptr)) {
      if (!refill(lc)) {
        ++lc.stats.fresh;
        void* raw = ::operator new(kSlotSize, std::align_val_t{kSlotAlign});
        return new (raw) NodeT(std::forward<Args>(args)...);
      }
      slot = lc.head;
    }
    lc.head = slot->next;
    --lc.count;
    ++lc.stats.reused;
    return new (static_cast<void*>(slot)) NodeT(std::forward<Args>(args)...);
  }

  /// Immediately return a node's slot to the pool. Only legal for nodes no
  /// other thread can reach: never-published spares and quiescent teardown.
  /// Reachable nodes go through EbrDomain::retire(p, pool) instead.
  void destroy(NodeT* p) { recycleRaw(p); }

  /// PoolBase hook: EbrDomain hands back an expired slot (grace period over,
  /// nobody can read it) on the retiring thread. Null-safe, like the
  /// `delete` it replaces (destroy() funnels through here).
  void recycleRaw(void* p) override {
    if (p == nullptr) return;
    LocalCache& lc = *local_[ThreadRegistry::tid()];
    auto* slot = static_cast<FreeSlot*>(p);
    slot->next = lc.head;
    lc.head = slot;
    ++lc.count;
    ++lc.stats.recycled;
    if (PATHCAS_UNLIKELY(lc.count >= kLocalCap)) spill(lc);
  }

  /// Release all pooled (free) memory back to the system. Requires
  /// quiescence: no concurrent alloc/destroy, and no structure still holds
  /// live nodes it expects to destroy later *into* this memory — though live
  /// nodes themselves are untouched (only free slots are released).
  void drainQuiescent() {
    for (auto& padded : local_) {
      LocalCache& lc = *padded;
      lc.stats.drained += releaseChain(lc.head);
      lc.head = nullptr;
      lc.count = 0;
    }
    std::uint64_t drained = 0;
    for (auto& padded : shards_) {
      Shard& sh = *padded;
      sh.lock.lock();
      Chain* chain = sh.chains.load(std::memory_order_relaxed);
      sh.chains.store(nullptr, std::memory_order_relaxed);
      sh.lock.unlock();
      while (chain != nullptr) {
        Chain* next = chain->nextChain;
        drained += releaseChain(chain->slots);
        ::operator delete(chain, std::align_val_t{kSlotAlign});
        ++drained;  // the chain header occupies a slot too
        chain = next;
      }
    }
    local_[ThreadRegistry::tid()]->stats.drained += drained;
  }

  // ----------------------------------------------------------------------
  // Statistics (aggregators require quiescence; used by tests and the
  // footprint columns of the analysis benches).
  // ----------------------------------------------------------------------

  PoolStats stats() const {
    PoolStats total;
    for (auto& padded : local_) {
      const PoolStats& s = padded->stats;
      total.fresh += s.fresh;
      total.reused += s.reused;
      total.recycled += s.recycled;
      total.spills += s.spills;
      total.refills += s.refills;
      total.drained += s.drained;
    }
    return total;
  }

  /// Nodes handed out and not yet returned (live in structures or in limbo).
  std::uint64_t liveCount() const {
    const PoolStats s = stats();
    return s.fresh + s.reused - s.recycled;
  }

  /// Free slots currently cached (local lists + global shards).
  std::uint64_t freeCount() const {
    std::uint64_t n = 0;
    for (auto& padded : local_) n += padded->count;
    for (auto& padded : shards_) {
      Shard& sh = const_cast<Shard&>(*padded);
      sh.lock.lock();
      for (Chain* c = sh.chains.load(std::memory_order_relaxed); c != nullptr;
           c = c->nextChain) {
        n += c->count;
      }
      sh.lock.unlock();
    }
    return n;
  }

  /// Bytes of node memory the pool currently holds (live + free): what the
  /// paper's footprint analysis measures, from counters instead of a walk.
  std::uint64_t footprintBytes() const {
    const PoolStats s = stats();
    return (s.fresh - s.drained) * kSlotSize;
  }

  static constexpr std::size_t slotSize() { return kSlotSize; }

 private:
  /// Intrusive free-list link, written over a dead node's first bytes.
  struct FreeSlot {
    FreeSlot* next;
  };
  /// A spilled chain's header, written over its first slot: the chain link,
  /// the remaining slots, and the total count (header slot included).
  struct Chain {
    Chain* nextChain;
    FreeSlot* slots;
    std::uint32_t count;
  };

  static constexpr std::size_t kSlotSize =
      sizeof(NodeT) > sizeof(Chain) ? sizeof(NodeT) : sizeof(Chain);
  // Cache-line aligned so a node never straddles a line it doesn't need to
  // (and so recycling hands back line-granular memory).
  static constexpr std::size_t kSlotAlign =
      alignof(NodeT) > kCacheLine ? alignof(NodeT) : kCacheLine;

  static constexpr std::uint32_t kLocalCap = 512;
  static constexpr std::uint32_t kSpillBatch = kLocalCap / 2;
  static constexpr int kShards = 8;

  struct LocalCache {
    FreeSlot* head = nullptr;
    std::uint32_t count = 0;
    PoolStats stats;
  };
  struct Shard {
    TatasLock lock;
    std::atomic<Chain*> chains{nullptr};  // mutated under lock; atomic so
                                          // refill can peek without it
  };

  void spill(LocalCache& lc) {
    // Keep the hottest (most recently freed, nearest the head) half local;
    // export the stale tail — the walk to the cut point costs the same
    // either way, and the local list stays cache-warm.
    FreeSlot* keepTail = lc.head;
    for (std::uint32_t i = 1; i < lc.count - kSpillBatch; ++i)
      keepTail = keepTail->next;
    FreeSlot* first = keepTail->next;  // head of the cold tail
    keepTail->next = nullptr;
    lc.count -= kSpillBatch;
    FreeSlot* rest = first->next;  // read before the header overwrites it
    auto* chain = new (static_cast<void*>(first)) Chain{nullptr, rest,
                                                        kSpillBatch};
    Shard& sh = *shards_[shardIndex()];
    sh.lock.lock();
    chain->nextChain = sh.chains.load(std::memory_order_relaxed);
    sh.chains.store(chain, std::memory_order_relaxed);
    sh.lock.unlock();
    ++lc.stats.spills;
  }

  bool refill(LocalCache& lc) {
    const int start = shardIndex();
    for (int i = 0; i < kShards; ++i) {
      Shard& sh = *shards_[(start + i) % kShards];
      if (sh.chains.load(std::memory_order_relaxed) == nullptr) continue;
      sh.lock.lock();
      Chain* chain = sh.chains.load(std::memory_order_relaxed);
      if (chain != nullptr)
        sh.chains.store(chain->nextChain, std::memory_order_relaxed);
      sh.lock.unlock();
      if (chain == nullptr) continue;
      // Turn the header slot back into a plain free slot at the chain head.
      FreeSlot* rest = chain->slots;
      const std::uint32_t count = chain->count;
      auto* headSlot = new (static_cast<void*>(chain)) FreeSlot{rest};
      lc.head = headSlot;
      lc.count = count;
      ++lc.stats.refills;
      return true;
    }
    return false;
  }

  static std::uint64_t releaseChain(FreeSlot* slot) {
    std::uint64_t n = 0;
    while (slot != nullptr) {
      FreeSlot* next = slot->next;
      ::operator delete(slot, std::align_val_t{kSlotAlign});
      slot = next;
      ++n;
    }
    return n;
  }

  static int shardIndex() { return ThreadRegistry::tid() % kShards; }

  Padded<LocalCache> local_[kMaxThreads];
  Padded<Shard> shards_[kShards];
};

/// The process-lifetime pool shared by every structure instance using node
/// type N — the default owner when a constructor is not handed one. Static
/// storage satisfies the pool ownership rule for the process-wide EbrDomain
/// (which is leaked, so it never outlives these).
template <typename N>
NodePool<N>& defaultPool() {
  static NodePool<N> pool;
  return pool;
}

}  // namespace pathcas::recl
